#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace tcpni
{

Random::Random(uint64_t seed_val)
{
    seed(seed_val);
}

void
Random::seed(uint64_t seed_val)
{
    // SplitMix64 to expand the seed into the xoshiro state; this is the
    // initialization recommended by the xoshiro authors.
    uint64_t z = seed_val;
    for (int i = 0; i < 4; i += 2) {
        z += 0x9e3779b97f4a7c15ULL;
        uint64_t w = z;
        w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
        w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
        w = w ^ (w >> 31);
        s_[i] = static_cast<uint32_t>(w);
        s_[i + 1] = static_cast<uint32_t>(w >> 32);
    }
    // All-zero state is invalid for xoshiro; nudge it if it happens.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint32_t
Random::next32()
{
    uint32_t result = rotl(s_[1] * 5, 7) * 9;
    uint32_t t = s_[1] << 9;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 11);

    return result;
}

uint64_t
Random::next64()
{
    uint64_t hi = next32();
    uint64_t lo = next32();
    return (hi << 32) | lo;
}

uint32_t
Random::uniform(uint32_t lo, uint32_t hi)
{
    tcpni_assert(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi) - lo + 1;
    // Lemire's multiply-and-shift rejection-free mapping is adequate
    // here; tiny bias over a 32-bit range does not matter for workloads.
    return lo + static_cast<uint32_t>((next32() * range) >> 32);
}

double
Random::uniformDouble()
{
    // 53 random bits into [0, 1).
    uint64_t v = next64() >> 11;
    return static_cast<double>(v) * (1.0 / 9007199254740992.0);
}

double
Random::exponential(double mean)
{
    double u = uniformDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 1e-300;
    return -mean * std::log(u);
}

bool
Random::chance(double p)
{
    return uniformDouble() < p;
}

} // namespace tcpni
