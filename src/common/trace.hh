/**
 * @file
 * The tcpni observability layer: per-component debug trace flags and
 * structured message-lifecycle tracing.
 *
 * Two coordinated facilities share this header:
 *
 * 1. **Debug trace flags** (gem5 DPRINTF-style).  Every traced
 *    component belongs to one Flag (NI, NOC, CPU, DISPATCH, EVENT,
 *    TAM).  Call sites use the TCPNI_TRACE / TCPNI_TRACE_AT macros,
 *    which compile to a single global load-and-test when the flag is
 *    disabled -- the format arguments are not even evaluated.  Flags
 *    are runtime-settable programmatically (enable()/disable()) or via
 *    the TCPNI_TRACE environment variable, e.g.
 *
 *        TCPNI_TRACE=NI,NOC ./build/examples/quickstart
 *
 *    Lines are emitted as "tick: component.name: message" to stderr
 *    (redirectable with setStream() for tests).
 *
 * 2. **Message-lifecycle tracing.**  Every Message is tagged with a
 *    monotonically increasing trace id (allocated per simulation by
 *    EventQueue::nextTraceId()) when it enters an NI output
 *    queue.  Components report lifecycle points (inject, each mesh
 *    hop, arrival-queue enqueue, dispatch into the input registers,
 *    handler done) to an optionally installed TraceSink, which can
 *    render them as Chrome trace-event JSON (loadable in Perfetto /
 *    chrome://tracing, one track per node).  With no sink installed
 *    the per-message cost is a single null-pointer test.
 */

#ifndef TCPNI_COMMON_TRACE_HH
#define TCPNI_COMMON_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{
namespace trace
{

/** One bit per traced component. */
enum class Flag : uint32_t
{
    NI = 1u << 0,        //!< network-interface commands and queues
    NOC = 1u << 1,       //!< fabric injection, hops, delivery
    CPU = 1u << 2,       //!< instruction retire, interrupts
    DISPATCH = 1u << 3,  //!< MsgIp dispatch decisions
    EVENT = 1u << 4,     //!< event-queue activity
    TAM = 1u << 5,       //!< TAM protocol state transitions
    HPU = 1u << 6,       //!< on-NI handler processing unit
};

constexpr uint32_t allFlagsMask = 0x7f;

namespace detail
{
/** Bitwise OR of the enabled Flags.  Exposed only so enabled() can
 *  inline to a load-and-test; do not write it directly. */
extern uint32_t enabledMask;
} // namespace detail

/** True when @p f is enabled.  This is the hot-path check. */
inline bool
enabled(Flag f)
{
    return (detail::enabledMask & static_cast<uint32_t>(f)) != 0;
}

void enable(Flag f);
void disable(Flag f);
void enableAll();
void disableAll();

/** Canonical name of a flag ("NI", "NOC", ...). */
const char *flagName(Flag f);

/** Parse one flag name (case-insensitive). @return false if unknown. */
bool parseFlag(const std::string &name, Flag &out);

/**
 * Enable flags from a comma/space-separated spec such as "NI,NOC" or
 * "all".  Unknown names are warned about and skipped.
 * @return true if every token was recognized.
 */
bool setFromString(const std::string &spec);

/** Apply the TCPNI_TRACE environment variable (no-op when unset).
 *  Called automatically at program start. */
void initFromEnv();

/** Redirect this thread's trace output; nullptr restores the default
 *  (stderr). */
void setStream(std::ostream *os);

/** The current trace output stream. */
std::ostream &stream();

/** Emit one "tick: who: message" line (call via the macros). */
void emit(Flag f, Tick tick, const std::string &who, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Lifecycle points of a message. */
enum class Stage : uint8_t
{
    inject,    //!< entered an NI output queue (SEND)
    hop,       //!< advanced one router in the fabric
    arrive,    //!< enqueued in the destination NI input queue
    dispatch,  //!< loaded into the input registers (handler start)
    done,      //!< consumed by NEXT (handler finished)
    hpuStart,  //!< on-NI handler activation began on the HPU
    hpuEnd,    //!< on-NI handler activation finished
    hpuOverrun, //!< activation exceeded the HPU handler-time budget
};

const char *stageName(Stage s);

/** One recorded lifecycle point. */
struct LifecycleEvent
{
    uint64_t id;    //!< message trace id
    Stage stage;
    NodeId node;    //!< where the event happened
    Tick tick;
    uint8_t type;   //!< 4-bit message type
};

/**
 * Collector of message-lifecycle events.
 *
 * Install with setSink(); components then record() their lifecycle
 * points.  Recording is bounded (see setLimit) so that multi-million
 * message benchmark runs cannot exhaust host memory; overflow is
 * counted, reported in the Chrome trace metadata, and warned about.
 */
class TraceSink
{
  public:
    TraceSink() = default;

    void record(uint64_t id, Stage stage, NodeId node, Tick tick,
                uint8_t type);

    const std::vector<LifecycleEvent> &events() const { return events_; }

    /** Events of one message, ordered by (tick, stage). */
    std::vector<LifecycleEvent> lifecycle(uint64_t id) const;

    /** Number of distinct ids with both an inject (or arrive) and a
     *  dispatch event -- i.e. complete deliveries. */
    size_t completeLifecycles() const;

    /** Events not recorded because the limit was reached. */
    uint64_t dropped() const { return dropped_; }

    /** Cap the number of stored events (default 1M). */
    void setLimit(size_t limit) { limit_ = limit; }

    void clear();

    /**
     * Write the events as Chrome trace-event JSON: one named track
     * per node (tid = node id), duration slices for the network /
     * queued / handler phases of each message, and instant events for
     * individual hops.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::vector<LifecycleEvent> events_;
    size_t limit_ = 1u << 20;
    uint64_t dropped_ = 0;
};

/**
 * The installed sink, or nullptr when lifecycle tracing is off.
 *
 * The sink pointer (like the stream) is thread-local: every worker
 * thread of a parallel sweep can install its own sink (or, by
 * default, none) without racing the others, and recording stays
 * lock-free.  Install the sink from the thread that runs the
 * simulation.
 */
TraceSink *sink();

/** Install (or, with nullptr, remove) this thread's lifecycle sink. */
void setSink(TraceSink *s);

} // namespace trace
} // namespace tcpni

/**
 * Trace from inside a SimObject member: picks up curTick() and name()
 * from the enclosing object.  Arguments are evaluated only when the
 * flag is enabled.
 */
#define TCPNI_TRACE(flag, ...)                                              \
    do {                                                                    \
        if (::tcpni::trace::enabled(::tcpni::trace::Flag::flag))            \
            ::tcpni::trace::emit(::tcpni::trace::Flag::flag, curTick(),     \
                                 name(), __VA_ARGS__);                      \
    } while (0)

/** Trace with an explicit tick and component name (for non-SimObject
 *  contexts such as the event queue or the TAM interpreter). */
#define TCPNI_TRACE_AT(flag, tick, who, ...)                                \
    do {                                                                    \
        if (::tcpni::trace::enabled(::tcpni::trace::Flag::flag))            \
            ::tcpni::trace::emit(::tcpni::trace::Flag::flag, (tick),        \
                                 (who), __VA_ARGS__);                       \
    } while (0)

#endif // TCPNI_COMMON_TRACE_HH
