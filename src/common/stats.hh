/**
 * @file
 * A small statistics package in the spirit of gem5's stats framework.
 *
 * Simulation objects register named statistics in a StatGroup.  Scalar
 * counts, per-bucket vectors, distributions, and derived formulas are
 * supported, together with a text dump that the benchmark harnesses use
 * to report results.
 */

#ifndef TCPNI_COMMON_STATS_HH
#define TCPNI_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace stats
{

/** A named scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(int64_t v) { value_ += v; return *this; }
    Scalar &operator=(int64_t v) { value_ = v; return *this; }

    int64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    int64_t value_ = 0;
};

/** A named vector of counters indexed by a small integer. */
class Vector
{
  public:
    explicit Vector(size_t size = 0) : values_(size, 0) {}

    /** Grow (never shrink) to at least @p size buckets. */
    void resize(size_t size);

    int64_t &operator[](size_t i);
    int64_t at(size_t i) const;
    size_t size() const { return values_.size(); }
    int64_t total() const;
    void reset();

  private:
    std::vector<int64_t> values_;
};

/** A sampled distribution with mean/min/max/stddev and linear buckets. */
class Distribution
{
  public:
    /** Bucket samples into @p nbuckets buckets spanning [lo, hi). */
    Distribution(double lo = 0, double hi = 100, size_t nbuckets = 10);

    void sample(double v, int64_t count = 1);

    int64_t count() const { return count_; }
    double mean() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<int64_t> &buckets() const { return buckets_; }
    int64_t underflow() const { return underflow_; }
    int64_t overflow() const { return overflow_; }
    void reset();

  private:
    double lo_, hi_, bucketSize_;
    std::vector<int64_t> buckets_;
    int64_t underflow_ = 0, overflow_ = 0;
    int64_t count_ = 0;
    double sum_ = 0, squares_ = 0;
    double min_ = 0, max_ = 0;
};

/**
 * A time-weighted level statistic (e.g. queue occupancy).
 *
 * Call update(level, now) whenever the tracked level changes; the time
 * integral of the level is accumulated so avg() is the true
 * time-weighted mean, not a per-sample mean (a queue that sits full
 * for 1000 cycles and empty for one update counts as full, unlike a
 * sample-weighted Distribution).
 */
class TimeWeighted
{
  public:
    TimeWeighted() = default;

    /** Record that the level is @p level as of @p now. */
    void
    update(uint64_t level, Tick now)
    {
        if (now > last_) {
            area_ += static_cast<double>(cur_) *
                     static_cast<double>(now - last_);
            last_ = now;
        }
        cur_ = level;
        if (level > max_)
            max_ = level;
    }

    /** Time-weighted mean level over [0, lastUpdate()]. */
    double
    avg() const
    {
        return last_ > 0 ? area_ / static_cast<double>(last_)
                         : static_cast<double>(cur_);
    }

    uint64_t max() const { return max_; }
    uint64_t current() const { return cur_; }
    Tick lastUpdate() const { return last_; }

    void
    reset()
    {
        cur_ = max_ = 0;
        area_ = 0;
        last_ = 0;
    }

  private:
    uint64_t cur_ = 0;
    uint64_t max_ = 0;
    double area_ = 0;
    Tick last_ = 0;
};

/**
 * A group of named statistics that can be dumped as text.
 *
 * Ownership: the group stores pointers to statistics owned by the
 * registering object; the object must outlive the group dump.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addScalar(const std::string &name, const Scalar *stat,
                   const std::string &desc = "");
    void addVector(const std::string &name, const Vector *stat,
                   const std::string &desc = "");
    void addDistribution(const std::string &name, const Distribution *stat,
                         const std::string &desc = "");
    void addTimeWeighted(const std::string &name, const TimeWeighted *stat,
                         const std::string &desc = "");
    void addHistogram(const std::string &name,
                      const metrics::Histogram *stat,
                      const std::string &desc = "");

    const std::string &name() const { return name_; }

    /** Write "group.stat value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Write the group as one JSON object:
     * {"name":"...","stats":{...}} -- scalars as numbers, vectors as
     * {"values":[...],"total":n}, distributions as
     * {"count","mean","stddev","min","max","underflow","overflow",
     * "buckets"}, time-weighted stats as {"avg","max"}.
     */
    void dumpJson(std::ostream &os) const;

  private:
    struct Entry
    {
        enum class Kind { scalar, vector, dist, timeWeighted,
                          histogram } kind;
        const void *stat;
        std::string desc;
    };

    std::string name_;
    std::vector<std::pair<std::string, Entry>> entries_;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number ("%.10g"; non-finite values,
 *  which JSON cannot represent, collapse to "0"). */
std::string jsonNum(double v);

} // namespace stats
} // namespace tcpni

#endif // TCPNI_COMMON_STATS_HH
