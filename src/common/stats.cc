#include "common/stats.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace tcpni
{
namespace stats
{

void
Vector::resize(size_t size)
{
    if (size > values_.size())
        values_.resize(size, 0);
}

int64_t &
Vector::operator[](size_t i)
{
    if (i >= values_.size())
        values_.resize(i + 1, 0);
    return values_[i];
}

int64_t
Vector::at(size_t i) const
{
    return i < values_.size() ? values_[i] : 0;
}

int64_t
Vector::total() const
{
    int64_t sum = 0;
    for (int64_t v : values_)
        sum += v;
    return sum;
}

void
Vector::reset()
{
    for (int64_t &v : values_)
        v = 0;
}

Distribution::Distribution(double lo, double hi, size_t nbuckets)
    : lo_(lo), hi_(hi), buckets_(nbuckets, 0)
{
    tcpni_assert(hi > lo && nbuckets > 0);
    bucketSize_ = (hi - lo) / static_cast<double>(nbuckets);
}

void
Distribution::sample(double v, int64_t count)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    count_ += count;
    sum_ += v * count;
    squares_ += v * v * count;

    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        size_t idx = static_cast<size_t>((v - lo_) / bucketSize_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += count;
    }
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (squares_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    for (int64_t &b : buckets_)
        b = 0;
    underflow_ = overflow_ = count_ = 0;
    sum_ = squares_ = min_ = max_ = 0;
}

void
StatGroup::addScalar(const std::string &name, const Scalar *stat,
                     const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::scalar, stat, desc}});
}

void
StatGroup::addVector(const std::string &name, const Vector *stat,
                     const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::vector, stat, desc}});
}

void
StatGroup::addDistribution(const std::string &name, const Distribution *stat,
                           const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::dist, stat, desc}});
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat_name, const std::string &value,
                    const std::string &desc) {
        os << std::left << std::setw(40) << (name_ + "." + stat_name)
           << " " << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[stat_name, entry] : entries_) {
        switch (entry.kind) {
          case Entry::Kind::scalar: {
            auto *s = static_cast<const Scalar *>(entry.stat);
            line(stat_name, std::to_string(s->value()), entry.desc);
            break;
          }
          case Entry::Kind::vector: {
            auto *v = static_cast<const Vector *>(entry.stat);
            for (size_t i = 0; i < v->size(); ++i) {
                line(stat_name + "[" + std::to_string(i) + "]",
                     std::to_string(v->at(i)), entry.desc);
            }
            line(stat_name + ".total", std::to_string(v->total()),
                 entry.desc);
            break;
          }
          case Entry::Kind::dist: {
            auto *d = static_cast<const Distribution *>(entry.stat);
            line(stat_name + ".count", std::to_string(d->count()),
                 entry.desc);
            std::ostringstream mean_ss;
            mean_ss << std::fixed << std::setprecision(3) << d->mean();
            line(stat_name + ".mean", mean_ss.str(), entry.desc);
            break;
          }
        }
    }
}

} // namespace stats
} // namespace tcpni
