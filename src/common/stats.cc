#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace tcpni
{
namespace stats
{

void
Vector::resize(size_t size)
{
    if (size > values_.size())
        values_.resize(size, 0);
}

int64_t &
Vector::operator[](size_t i)
{
    if (i >= values_.size())
        values_.resize(i + 1, 0);
    return values_[i];
}

int64_t
Vector::at(size_t i) const
{
    return i < values_.size() ? values_[i] : 0;
}

int64_t
Vector::total() const
{
    int64_t sum = 0;
    for (int64_t v : values_)
        sum += v;
    return sum;
}

void
Vector::reset()
{
    for (int64_t &v : values_)
        v = 0;
}

Distribution::Distribution(double lo, double hi, size_t nbuckets)
    : lo_(lo), hi_(hi), buckets_(nbuckets, 0)
{
    tcpni_assert(hi > lo && nbuckets > 0);
    bucketSize_ = (hi - lo) / static_cast<double>(nbuckets);
}

void
Distribution::sample(double v, int64_t count)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    count_ += count;
    sum_ += v * count;
    squares_ += v * v * count;

    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        size_t idx = static_cast<size_t>((v - lo_) / bucketSize_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += count;
    }
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (squares_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    for (int64_t &b : buckets_)
        b = 0;
    underflow_ = overflow_ = count_ = 0;
    sum_ = squares_ = min_ = max_ = 0;
}

void
StatGroup::addScalar(const std::string &name, const Scalar *stat,
                     const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::scalar, stat, desc}});
}

void
StatGroup::addVector(const std::string &name, const Vector *stat,
                     const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::vector, stat, desc}});
}

void
StatGroup::addDistribution(const std::string &name, const Distribution *stat,
                           const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::dist, stat, desc}});
}

void
StatGroup::addTimeWeighted(const std::string &name,
                           const TimeWeighted *stat,
                           const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::timeWeighted, stat, desc}});
}

void
StatGroup::addHistogram(const std::string &name,
                        const metrics::Histogram *stat,
                        const std::string &desc)
{
    entries_.push_back({name, {Entry::Kind::histogram, stat, desc}});
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat_name, const std::string &value,
                    const std::string &desc) {
        os << std::left << std::setw(40) << (name_ + "." + stat_name)
           << " " << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[stat_name, entry] : entries_) {
        switch (entry.kind) {
          case Entry::Kind::scalar: {
            auto *s = static_cast<const Scalar *>(entry.stat);
            line(stat_name, std::to_string(s->value()), entry.desc);
            break;
          }
          case Entry::Kind::vector: {
            auto *v = static_cast<const Vector *>(entry.stat);
            for (size_t i = 0; i < v->size(); ++i) {
                line(stat_name + "[" + std::to_string(i) + "]",
                     std::to_string(v->at(i)), entry.desc);
            }
            line(stat_name + ".total", std::to_string(v->total()),
                 entry.desc);
            break;
          }
          case Entry::Kind::dist: {
            auto *d = static_cast<const Distribution *>(entry.stat);
            line(stat_name + ".count", std::to_string(d->count()),
                 entry.desc);
            std::ostringstream mean_ss;
            mean_ss << std::fixed << std::setprecision(3) << d->mean();
            line(stat_name + ".mean", mean_ss.str(), entry.desc);
            break;
          }
          case Entry::Kind::timeWeighted: {
            auto *t = static_cast<const TimeWeighted *>(entry.stat);
            std::ostringstream avg_ss;
            avg_ss << std::fixed << std::setprecision(3) << t->avg();
            line(stat_name + ".avg", avg_ss.str(), entry.desc);
            line(stat_name + ".max", std::to_string(t->max()),
                 entry.desc);
            break;
          }
          case Entry::Kind::histogram: {
            auto *h = static_cast<const metrics::Histogram *>(
                entry.stat);
            line(stat_name + ".count", std::to_string(h->count()),
                 entry.desc);
            std::ostringstream mean_ss;
            mean_ss << std::fixed << std::setprecision(3) << h->mean();
            line(stat_name + ".mean", mean_ss.str(), entry.desc);
            line(stat_name + ".p50",
                 std::to_string(h->percentile(0.50)), entry.desc);
            line(stat_name + ".p99",
                 std::to_string(h->percentile(0.99)), entry.desc);
            line(stat_name + ".max", std::to_string(h->max()),
                 entry.desc);
            break;
          }
        }
    }
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

namespace
{

/** Render a double as JSON at the stats dumps' 6-digit precision
 *  (finite guard; NaN/inf become 0). */
std::string
statNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << jsonEscape(name_) << "\",\"stats\":{";
    bool first = true;
    for (const auto &[stat_name, entry] : entries_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(stat_name) << "\":";
        switch (entry.kind) {
          case Entry::Kind::scalar: {
            auto *s = static_cast<const Scalar *>(entry.stat);
            os << s->value();
            break;
          }
          case Entry::Kind::vector: {
            auto *v = static_cast<const Vector *>(entry.stat);
            os << "{\"values\":[";
            for (size_t i = 0; i < v->size(); ++i)
                os << (i ? "," : "") << v->at(i);
            os << "],\"total\":" << v->total() << "}";
            break;
          }
          case Entry::Kind::dist: {
            auto *d = static_cast<const Distribution *>(entry.stat);
            os << "{\"count\":" << d->count()
               << ",\"mean\":" << statNum(d->mean())
               << ",\"stddev\":" << statNum(d->stddev())
               << ",\"min\":" << statNum(d->min())
               << ",\"max\":" << statNum(d->max())
               << ",\"underflow\":" << d->underflow()
               << ",\"overflow\":" << d->overflow()
               << ",\"buckets\":[";
            const auto &b = d->buckets();
            for (size_t i = 0; i < b.size(); ++i)
                os << (i ? "," : "") << b[i];
            os << "]}";
            break;
          }
          case Entry::Kind::timeWeighted: {
            auto *t = static_cast<const TimeWeighted *>(entry.stat);
            os << "{\"avg\":" << statNum(t->avg())
               << ",\"max\":" << t->max() << "}";
            break;
          }
          case Entry::Kind::histogram: {
            auto *h = static_cast<const metrics::Histogram *>(
                entry.stat);
            os << "{\"count\":" << h->count()
               << ",\"mean\":" << statNum(h->mean())
               << ",\"min\":" << h->min()
               << ",\"max\":" << h->max()
               << ",\"p50\":" << h->percentile(0.50)
               << ",\"p90\":" << h->percentile(0.90)
               << ",\"p99\":" << h->percentile(0.99)
               << ",\"p999\":" << h->percentile(0.999) << "}";
            break;
          }
        }
    }
    os << "}}";
}

} // namespace stats
} // namespace tcpni
