/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style tables (Table 1, the Figure 12 component rows).
 */

#ifndef TCPNI_COMMON_TABLE_HH
#define TCPNI_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tcpni
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render the table with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    // A row with the single sentinel cell "\x01" renders as a separator.
    std::vector<std::vector<std::string>> rows_;
};

// Cell formatters shared by the paper-style tables.

/** Integer when whole, otherwise one decimal: "14", "3.5". */
std::string fmt(double v);

/** "lo-hi" cycle range, collapsed to one number when equal. */
std::string fmtRange(double lo, double hi);

/** "base+slope n" linear cost, collapsed when the slope is zero. */
std::string fmtLinear(double base, double slope);

/** Scaled count: "812.5k" below a million, "1.23M" above. */
std::string fmtK(double v);

/** Percentage with one decimal: 0.514 -> "51.4%". */
std::string pct(double v);

} // namespace tcpni

#endif // TCPNI_COMMON_TABLE_HH
