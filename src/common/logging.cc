#include "common/logging.hh"

#include <cstdio>

namespace tcpni
{

namespace logging
{

bool throwOnError = true;
bool quiet = false;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::string buf(static_cast<size_t>(n) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    buf.resize(static_cast<size_t>(n));
    return buf;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace logging

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    if (logging::throwOnError)
        throw PanicError(msg);
    logging::emit("panic", msg);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    if (logging::throwOnError)
        throw FatalError(msg);
    logging::emit("fatal", msg);
    std::exit(1);
}

void
inform(const char *fmt, ...)
{
    if (logging::quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    logging::emit("info", msg);
}

void
warn(const char *fmt, ...)
{
    if (logging::quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    logging::emit("warn", msg);
}

} // namespace tcpni
